package sim

import (
	"fmt"
	"strings"

	"graybox/internal/telemetry"
)

// TraceEvent is one recorded simulation event.
type TraceEvent struct {
	At       Time
	Category string
	Message  string
}

// Tracer records annotated events against the virtual clock, for
// debugging simulations and narrating experiments. It keeps at most
// limit events (oldest dropped); zero means unbounded.
//
// Tracer is a thin adapter over a telemetry.Ring — the circular buffer
// makes append O(1) at any size, and when the engine has a telemetry
// registry attached the same events appear in the Chrome trace export,
// so the two trace paths cannot diverge.
type Tracer struct {
	e    *Engine
	ring *telemetry.Ring
}

// NewTracer attaches a tracer to the engine, keeping at most limit
// events (0 = unbounded). If the engine has telemetry enabled, the
// tracer's events are included in trace exports.
func NewTracer(e *Engine, limit int) *Tracer {
	t := &Tracer{e: e, ring: telemetry.NewRing(limit)}
	e.tel.AddRing(t.ring)
	return t
}

// Eventf records an event at the current virtual time.
func (t *Tracer) Eventf(category, format string, args ...interface{}) {
	t.ring.Append(telemetry.Event{
		At:  int64(t.e.Now()),
		Cat: category,
		Msg: fmt.Sprintf(format, args...),
	})
}

// Events returns a copy of the recorded events in time order.
func (t *Tracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, t.ring.Len())
	t.ring.Do(func(ev telemetry.Event) {
		out = append(out, TraceEvent{At: Time(ev.At), Category: ev.Cat, Message: ev.Msg})
	})
	return out
}

// Dropped returns how many events were discarded to honor the limit.
func (t *Tracer) Dropped() int64 { return t.ring.Dropped() }

// Filter returns events in the given category.
func (t *Tracer) Filter(category string) []TraceEvent {
	var out []TraceEvent
	t.ring.Do(func(ev telemetry.Event) {
		if ev.Cat == category {
			out = append(out, TraceEvent{At: Time(ev.At), Category: ev.Cat, Message: ev.Msg})
		}
	})
	return out
}

// String renders the trace, one event per line.
func (t *Tracer) String() string {
	var b strings.Builder
	t.ring.Do(func(ev telemetry.Event) {
		fmt.Fprintf(&b, "%12v [%s] %s\n", Time(ev.At), ev.Cat, ev.Msg)
	})
	if d := t.ring.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", d)
	}
	return b.String()
}
